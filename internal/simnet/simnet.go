// Package simnet simulates the host-to-host network of the GRAPE-6
// installation: Gigabit Ethernet with the NIC/driver combinations the
// paper's tuning study measured (Section 4.4). Messages travel in the
// virtual time of a des.Engine with a latency/bandwidth cost model, and
// each sender's NIC serializes its outgoing transfers — the two effects
// that shape Figures 15-19.
package simnet

import (
	"fmt"

	"grape6/internal/des"
)

// NIC is a network-interface profile: half-RTT latency plus streaming
// bandwidth. The three measured profiles come from Section 4.4 of the
// paper; Myrinet is the "obvious solution" the authors could not afford,
// with the 5-10× lower latency they quote.
type NIC struct {
	Name      string
	RTT       float64 // round-trip latency in seconds
	Bandwidth float64 // payload bandwidth in bytes per second
}

// The paper's measured NIC profiles.
var (
	// NS83820 is the original setup: Planex GN-1000TC on an Athlon host.
	// "round-trip latency was around 200µs, and the peak bandwidth was
	// 60 MB/s."
	NS83820 = NIC{Name: "NS83820+Athlon", RTT: 200e-6, Bandwidth: 60e6}

	// Tigon2 is the Netgear GA621T: "somewhat better throughput (85MB/s),
	// but not much improvement in the latency."
	Tigon2 = NIC{Name: "Tigon2", RTT: 180e-6, Bandwidth: 85e6}

	// Intel82540EM is the tuned setup on an overclocked P4: "round-trip
	// latency was cut down to 67µs, and the throughput is increased to
	// 105MB/s."
	Intel82540EM = NIC{Name: "Intel82540EM+P4", RTT: 67e-6, Bandwidth: 105e6}

	// Myrinet is the hypothetical upgrade: "Myrinet would provide the
	// latency 5-10 times shorter than usual TCP/IP over Ethernet."
	Myrinet = NIC{Name: "Myrinet-class", RTT: 25e-6, Bandwidth: 240e6}

	// KernelBypass models the paper's software alternative ("communication
	// software which bypasses the TCP/IP protocol layer, such as GAMMA or
	// VIA"): the NS83820 wire with roughly half the round-trip spent in
	// the kernel stack removed.
	KernelBypass = NIC{Name: "NS83820+GAMMA/VIA", RTT: 90e-6, Bandwidth: 70e6}
)

// Validate reports profile errors.
func (n NIC) Validate() error {
	if n.RTT < 0 || n.Bandwidth <= 0 {
		return fmt.Errorf("simnet: invalid NIC profile %+v", n)
	}
	return nil
}

// TransferTime returns the serialization time of a payload.
func (n NIC) TransferTime(bytes int) float64 {
	return float64(bytes) / n.Bandwidth
}

// OneWay returns the end-to-end time of a single message: half the RTT
// plus the serialization time.
func (n NIC) OneWay(bytes int) float64 {
	return n.RTT/2 + n.TransferTime(bytes)
}

// Message is a delivered payload.
type Message struct {
	From    int
	Tag     int
	Bytes   int
	Payload interface{}
	SentAt  float64
}

// Observer receives network accounting events; internal/vtrace
// implements it structurally. All times are virtual.
type Observer interface {
	// MessageSent fires once per Send: queued is the NIC serialization
	// queueing delay (how long the transfer waited behind earlier sends
	// from the same rank before its own serialization started).
	MessageSent(from, to, tag, bytes int, queued float64)
	// RecvBlocked fires when a Recv that found an empty mailbox returns:
	// the receiving process was blocked from `from` until `until`.
	RecvBlocked(to, tag int, from, until float64)
}

// box is one live (rank, tag) mailbox: a circular buffer of queued
// messages plus at most one parked receiver. Boxes live in a slab and are
// recycled through a freelist the moment they are drained, so a long run
// with round-strided tags touches only a handful of slots — where the old
// map-of-slices design grew one entry per (rank, tag) ever used and
// linear-scanned growing queues.
type box struct {
	tag  int
	ring []Message // circular buffer; cap kept across reuse
	head int
	n    int
	w    *des.Waiter
}

// push appends a message in FIFO order, growing the ring if full.
func (b *box) push(m Message) {
	if b.n == len(b.ring) {
		grown := make([]Message, max(4, 2*len(b.ring)))
		for i := 0; i < b.n; i++ {
			grown[i] = b.ring[(b.head+i)%len(b.ring)]
		}
		b.ring = grown
		b.head = 0
	}
	b.ring[(b.head+b.n)%len(b.ring)] = m
	b.n++
}

// pop removes the oldest message, zeroing the vacated slot so the ring
// does not pin delivered payloads.
func (b *box) pop() Message {
	m := b.ring[b.head]
	b.ring[b.head] = Message{}
	b.head = (b.head + 1) % len(b.ring)
	b.n--
	return m
}

// pending is an in-flight message awaiting its delivery event. The slab
// index travels as the event argument, so a Send schedules delivery
// without allocating a closure.
type pending struct {
	msg Message
	to  int
	tag int
}

// rankWaiter caches the reusable parking spot of the process that
// receives for a rank, so the steady-state Recv path allocates nothing.
type rankWaiter struct {
	p *des.Proc
	w *des.Waiter
}

// Network connects n ranks with a shared NIC profile.
type Network struct {
	eng *des.Engine
	nic NIC
	n   int
	obs Observer

	deliverH des.HandlerID

	// Mailbox slab: active[rank] lists the slab indices of that rank's
	// live boxes (a short list — bounded by the tags simultaneously in
	// flight, not by the tags ever used), and boxFree recycles slots.
	boxes   []box
	active  [][]int32
	boxFree []int32

	// In-flight message slab.
	pend     []pending
	pendFree []int32

	waiters []rankWaiter

	// busyUntil serializes each rank's outgoing transfers.
	busyUntil []float64

	// Traffic counters.
	MessagesSent int64
	BytesSent    int64
}

// Observe attaches an accounting observer (nil detaches). With no
// observer the hooks cost one nil check per event.
func (net *Network) Observe(o Observer) { net.obs = o }

// New builds a network of n ranks on the given engine.
func New(eng *des.Engine, nic NIC, n int) *Network {
	if err := nic.Validate(); err != nil {
		panic(err)
	}
	if n <= 0 {
		panic(fmt.Sprintf("simnet: non-positive rank count %d", n))
	}
	net := &Network{
		eng:       eng,
		nic:       nic,
		n:         n,
		active:    make([][]int32, n),
		waiters:   make([]rankWaiter, n),
		busyUntil: make([]float64, n),
	}
	net.deliverH = eng.RegisterHandler(net.deliver)
	return net
}

// NIC returns the network's profile.
func (net *Network) NIC() NIC { return net.nic }

// Size returns the number of ranks.
func (net *Network) Size() int { return net.n }

func (net *Network) checkRank(r int) {
	if r < 0 || r >= net.n {
		//grapelint:ignore noallocdeep cold panic path: an out-of-range rank is a driver bug and the cosimulation dies here
		panic(fmt.Sprintf("simnet: rank %d out of range [0,%d)", r, net.n))
	}
}

// findBox returns the slab index of rank `to`'s live box for tag, or -1.
// The scan is over the rank's active list, whose length is the number of
// tags concurrently in flight for that rank (typically ≤ 2 in the
// parallel drivers), giving O(1) waiter lookup in practice.
//
//grape:noalloc
func (net *Network) findBox(to, tag int) int32 {
	for _, bi := range net.active[to] {
		if net.boxes[bi].tag == tag {
			return bi
		}
	}
	return -1
}

// newBox takes a slab slot for (to, tag) and links it into the rank's
// active list. The slot's ring capacity survives recycling.
//
//grape:noalloc
func (net *Network) newBox(to, tag int) int32 {
	var bi int32
	if k := len(net.boxFree) - 1; k >= 0 {
		bi = net.boxFree[k]
		net.boxFree = net.boxFree[:k]
	} else {
		bi = int32(len(net.boxes))
		net.boxes = append(net.boxes, box{})
	}
	b := &net.boxes[bi]
	b.tag = tag
	b.head = 0
	b.n = 0
	b.w = nil
	net.active[to] = append(net.active[to], bi)
	return bi
}

// releaseBox unlinks a drained, waiter-free box and recycles its slot.
//
//grape:noalloc
func (net *Network) releaseBox(to int, bi int32) {
	list := net.active[to]
	for i, v := range list {
		if v == bi {
			list[i] = list[len(list)-1]
			net.active[to] = list[:len(list)-1]
			break
		}
	}
	net.boxFree = append(net.boxFree, bi)
}

// deliver is the engine handler that lands an in-flight message in its
// destination mailbox; arg is the pending-slab index.
func (net *Network) deliver(arg uint64) {
	pm := &net.pend[arg]
	msg, to, tag := pm.msg, pm.to, pm.tag
	pm.msg = Message{} // unpin the payload from the slab
	net.pendFree = append(net.pendFree, int32(arg))
	bi := net.findBox(to, tag)
	if bi < 0 {
		bi = net.newBox(to, tag)
	}
	b := &net.boxes[bi]
	b.push(msg)
	if b.w != nil {
		w := b.w
		b.w = nil
		w.Wake(net.eng.Now())
	}
}

// Send transmits a message from rank `from` to rank `to`. It does not
// block the calling process (DMA semantics), but the sender's NIC is
// occupied for the serialization time, so back-to-back sends queue up.
// Delivery happens at send-start + serialization + latency.
//
// Ownership: the payload is delivered by reference at a LATER virtual
// time. The sender must not mutate a payload (or a slice's backing array)
// after Send — ship a copy if the local value keeps evolving.
//
//grape:noalloc
func (net *Network) Send(from, to, tag, bytes int, payload interface{}) {
	net.checkRank(from)
	net.checkRank(to)
	if bytes < 0 {
		panic("simnet: negative message size")
	}
	now := net.eng.Now()
	start := now
	if net.busyUntil[from] > start {
		start = net.busyUntil[from]
	}
	done := start + net.nic.TransferTime(bytes)
	net.busyUntil[from] = done
	arrive := done + net.nic.RTT/2

	net.MessagesSent++
	net.BytesSent += int64(bytes)
	if net.obs != nil {
		net.obs.MessageSent(from, to, tag, bytes, start-now)
	}

	var si int32
	if k := len(net.pendFree) - 1; k >= 0 {
		si = net.pendFree[k]
		net.pendFree = net.pendFree[:k]
	} else {
		si = int32(len(net.pend))
		net.pend = append(net.pend, pending{})
	}
	net.pend[si] = pending{
		msg: Message{From: from, Tag: tag, Bytes: bytes, Payload: payload, SentAt: now},
		to:  to,
		tag: tag,
	}
	net.eng.AtHandler(arrive, net.deliverH, uint64(si))
}

// Recv blocks the process until a message with the given tag arrives for
// rank `to`, and returns it. Messages with equal tags are delivered in
// arrival order. At most one process may wait on a (rank, tag) pair at a
// time.
func (net *Network) Recv(p *des.Proc, to, tag int) Message {
	net.checkRank(to)
	bi := net.findBox(to, tag)
	if bi < 0 || net.boxes[bi].n == 0 {
		blockedFrom := net.eng.Now()
		// Re-resolve the box each round: while this process is parked the
		// slab can grow (invalidating pointers, not indices) and in
		// principle another receiver could drain and recycle the slot.
		for bi = net.findBox(to, tag); bi < 0 || net.boxes[bi].n == 0; bi = net.findBox(to, tag) {
			if bi < 0 {
				bi = net.newBox(to, tag)
			}
			b := &net.boxes[bi]
			if b.w != nil {
				panic(fmt.Sprintf("simnet: second receiver on rank %d tag %d", to, tag))
			}
			rw := &net.waiters[to]
			if rw.p != p {
				rw.p = p
				rw.w = p.NewWaiter()
			}
			b.w = rw.w
			rw.w.Park()
		}
		if net.obs != nil {
			net.obs.RecvBlocked(to, tag, blockedFrom, net.eng.Now())
		}
	}
	b := &net.boxes[bi]
	msg := b.pop()
	if b.n == 0 && b.w == nil {
		net.releaseBox(to, bi)
	}
	return msg
}

// SendRecv sends to `peer` and then receives from any rank with the given
// tag — the building block of butterfly exchanges.
func (net *Network) SendRecv(p *des.Proc, self, peer, tag, bytes int, payload interface{}) Message {
	net.Send(self, peer, tag, bytes, payload)
	return net.Recv(p, self, tag)
}

// Butterfly performs a power-of-two butterfly barrier/allreduce pattern
// among size ranks: ceil(log2 size) rounds of pairwise exchanges, the
// synchronization structure the paper's code uses ("synchronization is
// done through butterfly message exchange using TCP/IP"). The merge
// callback, if non-nil, folds the peer's payload into the local value
// after each round; the final local value is returned.
//
// size must be a power of two (the machine's host counts are 1, 2, 4, 8,
// 16); rank must be < size.
func (net *Network) Butterfly(p *des.Proc, rank, size, tagBase, bytes int,
	local interface{}, merge func(local, remote interface{}) interface{}) interface{} {
	if size&(size-1) != 0 || size <= 0 {
		panic(fmt.Sprintf("simnet: butterfly size %d not a power of two", size))
	}
	if rank < 0 || rank >= size {
		panic(fmt.Sprintf("simnet: butterfly rank %d out of range", rank))
	}
	for bit := 1; bit < size; bit <<= 1 {
		peer := rank ^ bit
		msg := net.SendRecv(p, rank, peer, tagBase+bit, bytes, local)
		if merge != nil {
			local = merge(local, msg.Payload)
		}
	}
	return local
}

// BarrierTime returns the analytic duration of a butterfly barrier among
// size ranks exchanging `bytes`-sized messages: ceil(log2 size) rounds of
// one-way message time. Used by the performance model for cross-checks.
func (net *Network) BarrierTime(size, bytes int) float64 {
	rounds := 0
	for bit := 1; bit < size; bit <<= 1 {
		rounds++
	}
	return float64(rounds) * net.nic.OneWay(bytes)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
