// Package simnet simulates the host-to-host network of the GRAPE-6
// installation: Gigabit Ethernet with the NIC/driver combinations the
// paper's tuning study measured (Section 4.4). Messages travel in the
// virtual time of a des.Engine with a latency/bandwidth cost model, and
// each sender's NIC serializes its outgoing transfers — the two effects
// that shape Figures 15-19.
package simnet

import (
	"fmt"

	"grape6/internal/des"
)

// NIC is a network-interface profile: half-RTT latency plus streaming
// bandwidth. The three measured profiles come from Section 4.4 of the
// paper; Myrinet is the "obvious solution" the authors could not afford,
// with the 5-10× lower latency they quote.
type NIC struct {
	Name      string
	RTT       float64 // round-trip latency in seconds
	Bandwidth float64 // payload bandwidth in bytes per second
}

// The paper's measured NIC profiles.
var (
	// NS83820 is the original setup: Planex GN-1000TC on an Athlon host.
	// "round-trip latency was around 200µs, and the peak bandwidth was
	// 60 MB/s."
	NS83820 = NIC{Name: "NS83820+Athlon", RTT: 200e-6, Bandwidth: 60e6}

	// Tigon2 is the Netgear GA621T: "somewhat better throughput (85MB/s),
	// but not much improvement in the latency."
	Tigon2 = NIC{Name: "Tigon2", RTT: 180e-6, Bandwidth: 85e6}

	// Intel82540EM is the tuned setup on an overclocked P4: "round-trip
	// latency was cut down to 67µs, and the throughput is increased to
	// 105MB/s."
	Intel82540EM = NIC{Name: "Intel82540EM+P4", RTT: 67e-6, Bandwidth: 105e6}

	// Myrinet is the hypothetical upgrade: "Myrinet would provide the
	// latency 5-10 times shorter than usual TCP/IP over Ethernet."
	Myrinet = NIC{Name: "Myrinet-class", RTT: 25e-6, Bandwidth: 240e6}

	// KernelBypass models the paper's software alternative ("communication
	// software which bypasses the TCP/IP protocol layer, such as GAMMA or
	// VIA"): the NS83820 wire with roughly half the round-trip spent in
	// the kernel stack removed.
	KernelBypass = NIC{Name: "NS83820+GAMMA/VIA", RTT: 90e-6, Bandwidth: 70e6}
)

// Validate reports profile errors.
func (n NIC) Validate() error {
	if n.RTT < 0 || n.Bandwidth <= 0 {
		return fmt.Errorf("simnet: invalid NIC profile %+v", n)
	}
	return nil
}

// TransferTime returns the serialization time of a payload.
func (n NIC) TransferTime(bytes int) float64 {
	return float64(bytes) / n.Bandwidth
}

// OneWay returns the end-to-end time of a single message: half the RTT
// plus the serialization time.
func (n NIC) OneWay(bytes int) float64 {
	return n.RTT/2 + n.TransferTime(bytes)
}

// Message is a delivered payload.
type Message struct {
	From    int
	Tag     int
	Bytes   int
	Payload interface{}
	SentAt  float64
}

type mailKey struct {
	to  int
	tag int
}

// Observer receives network accounting events; internal/vtrace
// implements it structurally. All times are virtual.
type Observer interface {
	// MessageSent fires once per Send: queued is the NIC serialization
	// queueing delay (how long the transfer waited behind earlier sends
	// from the same rank before its own serialization started).
	MessageSent(from, to, tag, bytes int, queued float64)
	// RecvBlocked fires when a Recv that found an empty mailbox returns:
	// the receiving process was blocked from `from` until `until`.
	RecvBlocked(to, tag int, from, until float64)
}

// Network connects n ranks with a shared NIC profile.
type Network struct {
	eng  *des.Engine
	nic  NIC
	n    int
	mail map[mailKey][]Message
	wait map[mailKey]*des.Waiter
	obs  Observer

	// busyUntil serializes each rank's outgoing transfers.
	busyUntil []float64

	// Traffic counters.
	MessagesSent int64
	BytesSent    int64
}

// Observe attaches an accounting observer (nil detaches). With no
// observer the hooks cost one nil check per event.
func (net *Network) Observe(o Observer) { net.obs = o }

// New builds a network of n ranks on the given engine.
func New(eng *des.Engine, nic NIC, n int) *Network {
	if err := nic.Validate(); err != nil {
		panic(err)
	}
	if n <= 0 {
		panic(fmt.Sprintf("simnet: non-positive rank count %d", n))
	}
	return &Network{
		eng:       eng,
		nic:       nic,
		n:         n,
		mail:      make(map[mailKey][]Message),
		wait:      make(map[mailKey]*des.Waiter),
		busyUntil: make([]float64, n),
	}
}

// NIC returns the network's profile.
func (net *Network) NIC() NIC { return net.nic }

// Size returns the number of ranks.
func (net *Network) Size() int { return net.n }

func (net *Network) checkRank(r int) {
	if r < 0 || r >= net.n {
		panic(fmt.Sprintf("simnet: rank %d out of range [0,%d)", r, net.n))
	}
}

// Send transmits a message from rank `from` to rank `to`. It does not
// block the calling process (DMA semantics), but the sender's NIC is
// occupied for the serialization time, so back-to-back sends queue up.
// Delivery happens at send-start + serialization + latency.
//
// Ownership: the payload is delivered by reference at a LATER virtual
// time. The sender must not mutate a payload (or a slice's backing array)
// after Send — ship a copy if the local value keeps evolving.
func (net *Network) Send(from, to, tag, bytes int, payload interface{}) {
	net.checkRank(from)
	net.checkRank(to)
	if bytes < 0 {
		panic("simnet: negative message size")
	}
	now := net.eng.Now()
	start := now
	if net.busyUntil[from] > start {
		start = net.busyUntil[from]
	}
	done := start + net.nic.TransferTime(bytes)
	net.busyUntil[from] = done
	arrive := done + net.nic.RTT/2

	msg := Message{From: from, Tag: tag, Bytes: bytes, Payload: payload, SentAt: now}
	net.MessagesSent++
	net.BytesSent += int64(bytes)
	if net.obs != nil {
		net.obs.MessageSent(from, to, tag, bytes, start-now)
	}

	key := mailKey{to: to, tag: tag}
	net.eng.At(arrive, func() {
		net.mail[key] = append(net.mail[key], msg)
		if w := net.wait[key]; w != nil {
			delete(net.wait, key)
			w.Wake(net.eng.Now())
		}
	})
}

// Recv blocks the process until a message with the given tag arrives for
// rank `to`, and returns it. Messages with equal tags are delivered in
// arrival order. At most one process may wait on a (rank, tag) pair at a
// time.
func (net *Network) Recv(p *des.Proc, to, tag int) Message {
	net.checkRank(to)
	key := mailKey{to: to, tag: tag}
	if len(net.mail[key]) == 0 {
		blockedFrom := net.eng.Now()
		for len(net.mail[key]) == 0 {
			if net.wait[key] != nil {
				panic(fmt.Sprintf("simnet: second receiver on rank %d tag %d", to, tag))
			}
			w := p.NewWaiter()
			net.wait[key] = w
			w.Park()
		}
		if net.obs != nil {
			net.obs.RecvBlocked(to, tag, blockedFrom, net.eng.Now())
		}
	}
	q := net.mail[key]
	msg := q[0]
	copy(q, q[1:])
	// Zero the vacated tail slot: the shift leaves a duplicate Message —
	// payload reference included — live in the backing array, which would
	// keep delivered payloads reachable for as long as the mailbox
	// persists.
	q[len(q)-1] = Message{}
	net.mail[key] = q[:len(q)-1]
	return msg
}

// SendRecv sends to `peer` and then receives from any rank with the given
// tag — the building block of butterfly exchanges.
func (net *Network) SendRecv(p *des.Proc, self, peer, tag, bytes int, payload interface{}) Message {
	net.Send(self, peer, tag, bytes, payload)
	return net.Recv(p, self, tag)
}

// Butterfly performs a power-of-two butterfly barrier/allreduce pattern
// among size ranks: ceil(log2 size) rounds of pairwise exchanges, the
// synchronization structure the paper's code uses ("synchronization is
// done through butterfly message exchange using TCP/IP"). The merge
// callback, if non-nil, folds the peer's payload into the local value
// after each round; the final local value is returned.
//
// size must be a power of two (the machine's host counts are 1, 2, 4, 8,
// 16); rank must be < size.
func (net *Network) Butterfly(p *des.Proc, rank, size, tagBase, bytes int,
	local interface{}, merge func(local, remote interface{}) interface{}) interface{} {
	if size&(size-1) != 0 || size <= 0 {
		panic(fmt.Sprintf("simnet: butterfly size %d not a power of two", size))
	}
	if rank < 0 || rank >= size {
		panic(fmt.Sprintf("simnet: butterfly rank %d out of range", rank))
	}
	for bit := 1; bit < size; bit <<= 1 {
		peer := rank ^ bit
		msg := net.SendRecv(p, rank, peer, tagBase+bit, bytes, local)
		if merge != nil {
			local = merge(local, msg.Payload)
		}
	}
	return local
}

// BarrierTime returns the analytic duration of a butterfly barrier among
// size ranks exchanging `bytes`-sized messages: ceil(log2 size) rounds of
// one-way message time. Used by the performance model for cross-checks.
func (net *Network) BarrierTime(size, bytes int) float64 {
	rounds := 0
	for bit := 1; bit < size; bit <<= 1 {
		rounds++
	}
	return float64(rounds) * net.nic.OneWay(bytes)
}
