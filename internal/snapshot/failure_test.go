package snapshot

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"grape6/internal/model"
	"grape6/internal/xrand"
)

// validStream serialises a small system and returns the bytes.
func validStream(t *testing.T) []byte {
	t.Helper()
	sys := model.Plummer(8, xrand.New(7))
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 8, Time: 0.25, Eps: 1.0 / 64, Step: 99}, sys); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncationSweep reads every proper prefix of a valid stream. Each
// must fail with a clean error — never a panic, never a silent success —
// whether the cut lands in the magic, the version, the header, a
// particle record or the checksum trailer.
func TestTruncationSweep(t *testing.T) {
	data := validStream(t)
	for n := 0; n < len(data); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, _, err := Read(bytes.NewReader(data[:n])); err == nil {
				t.Errorf("Read accepted truncated stream of %d/%d bytes", n, len(data))
			}
		}()
	}
	// Sanity: the untruncated stream still reads.
	if _, _, err := Read(bytes.NewReader(data)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestCorruptedChecksum flips the final byte — inside the CRC-32
// trailer, so the payload is intact but the recorded checksum is wrong.
func TestCorruptedChecksum(t *testing.T) {
	data := validStream(t)
	data[len(data)-1] ^= 0x01
	_, _, err := Read(bytes.NewReader(data))
	if err == nil {
		t.Fatal("Read accepted stream with corrupted checksum trailer")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted trailer reported as %q, want a checksum error", err)
	}
}

// TestWrongVersion patches the version field (offset 4, after the
// 4-byte magic) to an unsupported value. Read must identify the version
// as the problem rather than fail later with a confusing record or
// checksum error.
func TestWrongVersion(t *testing.T) {
	data := validStream(t)
	binary.LittleEndian.PutUint32(data[4:8], Version+41)
	_, _, err := Read(bytes.NewReader(data))
	if err == nil {
		t.Fatal("Read accepted unsupported version")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version reported as %q, want a version error", err)
	}
}

// TestHugeHeaderN patches the header's particle count to an absurd
// value. Read must fail on the (now short) record section instead of
// attempting a multi-terabyte allocation.
func TestHugeHeaderN(t *testing.T) {
	data := validStream(t)
	binary.LittleEndian.PutUint64(data[8:16], 1<<40)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Read panicked on absurd header N: %v", r)
		}
	}()
	if _, _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("Read accepted header claiming 2^40 particles in a 8-particle stream")
	}
}
