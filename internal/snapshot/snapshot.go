// Package snapshot implements the binary checkpoint format used by the
// production runs ("The whole simulation, including file operations" —
// Section 5 accounts file I/O as part of the wall clock). The format is a
// fixed little-endian layout with a magic header, a version byte and a
// CRC-32 trailer, so that corrupted or truncated checkpoints are detected
// on restore.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"grape6/internal/nbody"
	"grape6/internal/vec"
)

// Magic identifies a GRAPE-6 reproduction snapshot stream.
const Magic = 0x47525036 // "GRP6"

// Version is the current format version.
const Version = 1

// Header carries run metadata stored with every snapshot.
type Header struct {
	N    int64
	Time float64 // system time of the snapshot
	Eps  float64 // softening used by the run
	Step int64   // cumulative individual steps at save time
}

// Write serialises the header and system to w.
func Write(w io.Writer, h Header, sys *nbody.System) error {
	if int(h.N) != sys.N {
		return fmt.Errorf("snapshot: header N=%d but system has %d", h.N, sys.N)
	}
	if err := sys.Validate(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if err := binary.Write(mw, binary.LittleEndian, uint32(Magic)); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(Version)); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
		return err
	}
	for i := 0; i < sys.N; i++ {
		rec := particleRecord(sys, i)
		if err := binary.Write(mw, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// record is the on-disk particle layout.
type record struct {
	ID                               int64
	Mass                             float64
	Pos, Vel, Acc, Jerk, Snap, Crack [3]float64
	Pot, Time, Step                  float64
}

func particleRecord(sys *nbody.System, i int) record {
	return record{
		ID:   int64(sys.ID[i]),
		Mass: sys.Mass[i],
		Pos:  v3arr(sys.Pos[i]), Vel: v3arr(sys.Vel[i]),
		Acc: v3arr(sys.Acc[i]), Jerk: v3arr(sys.Jerk[i]),
		Snap: v3arr(sys.Snap[i]), Crack: v3arr(sys.Crack[i]),
		Pot: sys.Pot[i], Time: sys.Time[i], Step: sys.Step[i],
	}
}

func v3arr(v vec.V3) [3]float64 { return [3]float64{v.X, v.Y, v.Z} }
func arrv3(a [3]float64) vec.V3 { return vec.New(a[0], a[1], a[2]) }

// Read deserialises a snapshot, verifying magic, version and checksum.
func Read(r io.Reader) (Header, *nbody.System, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var magic, version uint32
	if err := binary.Read(tr, binary.LittleEndian, &magic); err != nil {
		return Header{}, nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if magic != Magic {
		return Header{}, nil, fmt.Errorf("snapshot: bad magic %#x", magic)
	}
	if err := binary.Read(tr, binary.LittleEndian, &version); err != nil {
		return Header{}, nil, err
	}
	if version != Version {
		return Header{}, nil, fmt.Errorf("snapshot: unsupported version %d", version)
	}
	var h Header
	if err := binary.Read(tr, binary.LittleEndian, &h); err != nil {
		return Header{}, nil, err
	}
	if h.N < 0 || h.N > 1<<31 {
		return Header{}, nil, fmt.Errorf("snapshot: implausible N=%d", h.N)
	}
	if math.IsNaN(h.Time) {
		return Header{}, nil, fmt.Errorf("snapshot: NaN time")
	}

	sys := nbody.New(int(h.N))
	for i := 0; i < sys.N; i++ {
		var rec record
		if err := binary.Read(tr, binary.LittleEndian, &rec); err != nil {
			return Header{}, nil, fmt.Errorf("snapshot: particle %d: %w", i, err)
		}
		sys.ID[i] = int(rec.ID)
		sys.Mass[i] = rec.Mass
		sys.Pos[i] = arrv3(rec.Pos)
		sys.Vel[i] = arrv3(rec.Vel)
		sys.Acc[i] = arrv3(rec.Acc)
		sys.Jerk[i] = arrv3(rec.Jerk)
		sys.Snap[i] = arrv3(rec.Snap)
		sys.Crack[i] = arrv3(rec.Crack)
		sys.Pot[i] = rec.Pot
		sys.Time[i] = rec.Time
		sys.Step[i] = rec.Step
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return Header{}, nil, fmt.Errorf("snapshot: reading checksum: %w", err)
	}
	if got != want {
		return Header{}, nil, fmt.Errorf("snapshot: checksum mismatch %#x != %#x", got, want)
	}
	return h, sys, nil
}
