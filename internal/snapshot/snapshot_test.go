package snapshot

import (
	"bytes"
	"testing"

	"grape6/internal/model"
	"grape6/internal/xrand"
)

func TestRoundTrip(t *testing.T) {
	sys := model.Plummer(100, xrand.New(1))
	for i := 0; i < sys.N; i++ {
		sys.Time[i] = float64(i) / 128
		sys.Step[i] = 1.0 / 256
		sys.Pot[i] = -float64(i)
	}
	h := Header{N: 100, Time: 0.5, Eps: 1.0 / 64, Step: 12345}

	var buf bytes.Buffer
	if err := Write(&buf, h, sys); err != nil {
		t.Fatal(err)
	}
	h2, sys2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("header %+v != %+v", h2, h)
	}
	for i := 0; i < sys.N; i++ {
		if sys.Pos[i] != sys2.Pos[i] || sys.Vel[i] != sys2.Vel[i] ||
			sys.Time[i] != sys2.Time[i] || sys.Step[i] != sys2.Step[i] ||
			sys.Pot[i] != sys2.Pot[i] || sys.ID[i] != sys2.ID[i] {
			t.Fatalf("particle %d not restored exactly", i)
		}
	}
}

func TestHeaderMismatch(t *testing.T) {
	sys := model.Plummer(10, xrand.New(2))
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 11}, sys); err == nil {
		t.Error("accepted header/system N mismatch")
	}
}

func TestBadMagic(t *testing.T) {
	sys := model.Plummer(4, xrand.New(3))
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 4}, sys); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xff
	if _, _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("accepted corrupted magic")
	}
}

func TestCorruptionDetected(t *testing.T) {
	sys := model.Plummer(16, xrand.New(4))
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 16, Time: 1}, sys); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte in the middle of the particle payload.
	data[len(data)/2] ^= 0x40
	if _, _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	}
}

func TestTruncationDetected(t *testing.T) {
	sys := model.Plummer(16, xrand.New(5))
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 16}, sys); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, _, err := Read(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Error("truncation not detected")
	}
}

func TestEmptySystem(t *testing.T) {
	sys := model.Plummer(1, xrand.New(6))
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 1}, sys); err != nil {
		t.Fatal(err)
	}
	_, sys2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.N != 1 {
		t.Errorf("N = %d", sys2.N)
	}
}

func TestGarbageInput(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("accepted garbage")
	}
	if _, _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty input")
	}
}
