// Package netboard models the GRAPE-6 network board (Figures 2-3 of the
// paper): the switching fabric that connects each host to its four
// processor boards over LVDS/FPD-Link serial channels, cross-links the
// four network boards of a cluster, and — through its input-select
// switches — lets a cluster be partitioned into independent sub-units
// ("we can use a cluster as a single unit or as multiple units").
//
// The package provides the wiring model, partition validation, and the
// broadcast/reduction timing over the serial links, complementing the
// pipeline-level cycle accounting in internal/board.
package netboard

import (
	"fmt"
	"sort"
)

// Link is the LVDS/FPD-Link serial channel of Section 3.3: "four
// twisted-pair differential signal lines (three for signals and one for
// clock)" over category-5 cable up to about 5 m.
type Link struct {
	Bandwidth float64 // payload bytes per second
	HopDelay  float64 // per-hop serializer/deserializer latency, seconds
}

// DefaultLink models the FPD-Link at 3 data pairs × 7 bits × 66 MHz
// ≈ 1.39 Gbit/s ≈ 170 MB/s, with ~1 µs of SerDes latency per hop.
var DefaultLink = Link{Bandwidth: 170e6, HopDelay: 1e-6}

// Validate reports profile errors.
func (l Link) Validate() error {
	if l.Bandwidth <= 0 || l.HopDelay < 0 {
		return fmt.Errorf("netboard: invalid link %+v", l)
	}
	return nil
}

// Cluster is one GRAPE-6 cluster's wiring: Hosts network boards (one per
// host), each hardwired to BoardsPerNB processor boards, with the network
// boards fully cross-linked (Figure 2).
type Cluster struct {
	Hosts       int // network boards = hosts (production: 4)
	BoardsPerNB int // processor boards per network board (production: 4)
	Link        Link
}

// Production is the paper's cluster: 4 hosts × 4 boards.
var Production = Cluster{Hosts: 4, BoardsPerNB: 4, Link: DefaultLink}

// Validate reports configuration errors.
func (c Cluster) Validate() error {
	if c.Hosts <= 0 || c.BoardsPerNB <= 0 {
		return fmt.Errorf("netboard: non-positive cluster shape %d/%d", c.Hosts, c.BoardsPerNB)
	}
	return c.Link.Validate()
}

// Boards returns the number of processor boards in the cluster.
func (c Cluster) Boards() int { return c.Hosts * c.BoardsPerNB }

// HomeNB returns the network board a processor board is hardwired to.
func (c Cluster) HomeNB(boardID int) int { return boardID / c.BoardsPerNB }

// Hops returns the number of serial hops from a host to a processor
// board: 1 through the host's own network board, 2 when the board hangs
// off a peer network board (one cross-link plus the local fan-out).
func (c Cluster) Hops(host, boardID int) (int, error) {
	if host < 0 || host >= c.Hosts {
		return 0, fmt.Errorf("netboard: host %d out of range", host)
	}
	if boardID < 0 || boardID >= c.Boards() {
		return 0, fmt.Errorf("netboard: board %d out of range", boardID)
	}
	if c.HomeNB(boardID) == host {
		return 1, nil
	}
	return 2, nil
}

// Unit is one partition element: a set of hosts driving a set of boards.
type Unit struct {
	Hosts  []int
	Boards []int
}

// Partition divides the cluster into independently usable sub-units — the
// capability the paper added "by attaching a simple switching network
// before [the] memory interface".
type Partition struct {
	Units []Unit
}

// WholeCluster returns the single-unit partition using everything.
func (c Cluster) WholeCluster() Partition {
	u := Unit{}
	for h := 0; h < c.Hosts; h++ {
		u.Hosts = append(u.Hosts, h)
	}
	for b := 0; b < c.Boards(); b++ {
		u.Boards = append(u.Boards, b)
	}
	return Partition{Units: []Unit{u}}
}

// PerHost returns the fully split partition: each host with its own
// hardwired boards (the r² single host-GRAPE pairs of Section 3.2).
func (c Cluster) PerHost() Partition {
	var p Partition
	for h := 0; h < c.Hosts; h++ {
		u := Unit{Hosts: []int{h}}
		for k := 0; k < c.BoardsPerNB; k++ {
			u.Boards = append(u.Boards, h*c.BoardsPerNB+k)
		}
		p.Units = append(p.Units, u)
	}
	return p
}

// ValidatePartition checks that a partition is realisable on the wiring:
// every host and board used exactly once, units non-empty, and each
// unit's board count divisible by its host count (the 2D grid needs equal
// columns per host).
func (c Cluster) ValidatePartition(p Partition) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(p.Units) == 0 {
		return fmt.Errorf("netboard: empty partition")
	}
	seenH := make(map[int]bool)
	seenB := make(map[int]bool)
	for ui, u := range p.Units {
		if len(u.Hosts) == 0 || len(u.Boards) == 0 {
			return fmt.Errorf("netboard: unit %d empty", ui)
		}
		if len(u.Boards)%len(u.Hosts) != 0 {
			return fmt.Errorf("netboard: unit %d has %d boards for %d hosts (not divisible)",
				ui, len(u.Boards), len(u.Hosts))
		}
		for _, h := range u.Hosts {
			if h < 0 || h >= c.Hosts {
				return fmt.Errorf("netboard: unit %d references host %d out of range", ui, h)
			}
			if seenH[h] {
				return fmt.Errorf("netboard: host %d in multiple units", h)
			}
			seenH[h] = true
		}
		for _, b := range u.Boards {
			if b < 0 || b >= c.Boards() {
				return fmt.Errorf("netboard: unit %d references board %d out of range", ui, b)
			}
			if seenB[b] {
				return fmt.Errorf("netboard: board %d in multiple units", b)
			}
			seenB[b] = true
		}
	}
	if len(seenH) != c.Hosts {
		return fmt.Errorf("netboard: %d of %d hosts unassigned", c.Hosts-len(seenH), c.Hosts)
	}
	if len(seenB) != c.Boards() {
		return fmt.Errorf("netboard: %d of %d boards unassigned", c.Boards()-len(seenB), c.Boards())
	}
	return nil
}

// BroadcastTime returns the time for one host of the unit to broadcast
// `bytes` to all the unit's boards: the payload is serialized once per
// distinct hop distance (the fabric forwards in parallel), so the cost is
// the serialization plus the deepest hop chain.
func (c Cluster) BroadcastTime(host int, u Unit, bytes int) (float64, error) {
	if len(u.Boards) == 0 {
		// Without this check an empty unit would silently price as the
		// serialization cost alone (maxHops == 0) — a partition bug would
		// look like a fast configuration instead of an invalid one.
		return 0, fmt.Errorf("netboard: broadcast to empty unit")
	}
	maxHops := 0
	for _, b := range u.Boards {
		h, err := c.Hops(host, b)
		if err != nil {
			return 0, err
		}
		if h > maxHops {
			maxHops = h
		}
	}
	return float64(bytes)/c.Link.Bandwidth + float64(maxHops)*c.Link.HopDelay, nil
}

// ReduceTime returns the time to combine per-board partial results back to
// the host: the FPGA adders merge in the fabric, so the cost is one
// payload serialization plus the deepest hop chain (symmetric with
// broadcast on this full-duplex link).
func (c Cluster) ReduceTime(host int, u Unit, bytes int) (float64, error) {
	return c.BroadcastTime(host, u, bytes)
}

// UnitPeak returns the unit's fraction of the cluster's boards — the
// performance share a partition grants (flexibility-vs-capability, the
// Section 3.2 trade).
func (c Cluster) UnitPeak(u Unit) float64 {
	return float64(len(u.Boards)) / float64(c.Boards())
}

// Describe renders the wiring and partition for topology inspection.
func (c Cluster) Describe(p Partition) string {
	s := fmt.Sprintf("cluster: %d hosts, %d processor boards (%d per network board)\n",
		c.Hosts, c.Boards(), c.BoardsPerNB)
	for ui, u := range p.Units {
		hs := append([]int(nil), u.Hosts...)
		bs := append([]int(nil), u.Boards...)
		sort.Ints(hs)
		sort.Ints(bs)
		s += fmt.Sprintf("  unit %d: hosts %v boards %v (%.0f%% of peak)\n",
			ui, hs, bs, 100*c.UnitPeak(u))
	}
	return s
}
