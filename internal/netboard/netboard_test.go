package netboard

import (
	"math"
	"strings"
	"testing"
)

func TestProductionValid(t *testing.T) {
	if err := Production.Validate(); err != nil {
		t.Fatal(err)
	}
	if Production.Boards() != 16 {
		t.Errorf("production cluster boards = %d, want 16", Production.Boards())
	}
}

func TestValidateRejectsBad(t *testing.T) {
	c := Production
	c.Hosts = 0
	if err := c.Validate(); err == nil {
		t.Error("accepted zero hosts")
	}
	c = Production
	c.Link.Bandwidth = 0
	if err := c.Validate(); err == nil {
		t.Error("accepted zero bandwidth")
	}
}

func TestHomeNBAndHops(t *testing.T) {
	c := Production
	if c.HomeNB(0) != 0 || c.HomeNB(3) != 0 || c.HomeNB(4) != 1 || c.HomeNB(15) != 3 {
		t.Error("HomeNB wiring wrong")
	}
	h, err := c.Hops(0, 2)
	if err != nil || h != 1 {
		t.Errorf("own-board hops = %d (%v)", h, err)
	}
	h, err = c.Hops(0, 7)
	if err != nil || h != 2 {
		t.Errorf("peer-board hops = %d (%v)", h, err)
	}
	if _, err := c.Hops(9, 0); err == nil {
		t.Error("accepted out-of-range host")
	}
	if _, err := c.Hops(0, 99); err == nil {
		t.Error("accepted out-of-range board")
	}
}

func TestWholeClusterPartition(t *testing.T) {
	c := Production
	p := c.WholeCluster()
	if err := c.ValidatePartition(p); err != nil {
		t.Fatalf("whole-cluster partition invalid: %v", err)
	}
	if len(p.Units) != 1 || len(p.Units[0].Boards) != 16 {
		t.Errorf("whole cluster shape wrong: %+v", p)
	}
	if got := c.UnitPeak(p.Units[0]); got != 1.0 {
		t.Errorf("whole-cluster peak share = %v", got)
	}
}

func TestPerHostPartition(t *testing.T) {
	c := Production
	p := c.PerHost()
	if err := c.ValidatePartition(p); err != nil {
		t.Fatalf("per-host partition invalid: %v", err)
	}
	if len(p.Units) != 4 {
		t.Fatalf("units = %d", len(p.Units))
	}
	for ui, u := range p.Units {
		if len(u.Hosts) != 1 || len(u.Boards) != 4 {
			t.Errorf("unit %d shape: %+v", ui, u)
		}
		if got := c.UnitPeak(u); math.Abs(got-0.25) > 1e-12 {
			t.Errorf("unit %d peak share = %v", ui, got)
		}
		// All boards in a per-host unit are 1 hop from the host.
		for _, b := range u.Boards {
			if h, _ := c.Hops(u.Hosts[0], b); h != 1 {
				t.Errorf("per-host unit board %d is %d hops away", b, h)
			}
		}
	}
}

func TestPartitionValidationCatches(t *testing.T) {
	c := Production
	cases := []struct {
		name string
		p    Partition
	}{
		{"empty", Partition{}},
		{"empty unit", Partition{Units: []Unit{{}}}},
		{"duplicate host", Partition{Units: []Unit{
			{Hosts: []int{0, 0, 1, 2, 3}, Boards: rangeInts(0, 15)},
		}}},
		{"duplicate board", Partition{Units: []Unit{
			{Hosts: []int{0, 1, 2, 3}, Boards: append(rangeInts(0, 14), 0)},
		}}},
		{"missing board", Partition{Units: []Unit{
			{Hosts: []int{0, 1, 2, 3}, Boards: rangeInts(0, 11)},
		}}},
		{"non-divisible", Partition{Units: []Unit{
			{Hosts: []int{0, 1, 2}, Boards: rangeInts(0, 15)},
			{Hosts: []int{3}, Boards: []int{}},
		}}},
		{"out of range host", Partition{Units: []Unit{
			{Hosts: []int{0, 1, 2, 7}, Boards: rangeInts(0, 15)},
		}}},
	}
	for _, tc := range cases {
		if err := c.ValidatePartition(tc.p); err == nil {
			t.Errorf("%s: accepted invalid partition", tc.name)
		}
	}
}

func rangeInts(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestTwoUnitSplit(t *testing.T) {
	// 2 hosts + 8 boards per unit: a legal half-and-half split.
	c := Production
	p := Partition{Units: []Unit{
		{Hosts: []int{0, 1}, Boards: rangeInts(0, 7)},
		{Hosts: []int{2, 3}, Boards: rangeInts(8, 15)},
	}}
	if err := c.ValidatePartition(p); err != nil {
		t.Fatalf("half split invalid: %v", err)
	}
	if got := c.UnitPeak(p.Units[0]); got != 0.5 {
		t.Errorf("half-unit peak = %v", got)
	}
}

func TestBroadcastTiming(t *testing.T) {
	c := Production
	whole := c.WholeCluster().Units[0]
	own := c.PerHost().Units[0]

	// Whole-cluster broadcast reaches peer network boards: 2 hops.
	tw, err := c.BroadcastTime(0, whole, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000/c.Link.Bandwidth + 2*c.Link.HopDelay
	if math.Abs(tw-want) > 1e-15 {
		t.Errorf("whole broadcast = %v, want %v", tw, want)
	}
	// Own-boards-only broadcast: 1 hop, strictly faster.
	to, err := c.BroadcastTime(0, own, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if to >= tw {
		t.Errorf("own-board broadcast %v not faster than whole %v", to, tw)
	}
	// Reduce symmetric with broadcast.
	tr, err := c.ReduceTime(0, whole, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr != tw {
		t.Errorf("reduce %v != broadcast %v", tr, tw)
	}
}

func TestBroadcastBandwidthScaling(t *testing.T) {
	c := Production
	u := c.WholeCluster().Units[0]
	t1, _ := c.BroadcastTime(0, u, 1000)
	t2, _ := c.BroadcastTime(0, u, 1_001_000)
	// Extra 1e6 bytes at 170 MB/s ≈ 5.88 ms.
	if math.Abs((t2-t1)-1e6/c.Link.Bandwidth) > 1e-12 {
		t.Errorf("bandwidth term wrong: %v", t2-t1)
	}
}

func TestBroadcastErrors(t *testing.T) {
	c := Production
	u := Unit{Hosts: []int{0}, Boards: []int{99}}
	if _, err := c.BroadcastTime(0, u, 10); err == nil {
		t.Error("accepted out-of-range board")
	}
}

// Regression: an empty unit used to price as the serialization cost alone
// (maxHops == 0) instead of failing — a broken partition looked like the
// fastest configuration available.
func TestBroadcastUnitTable(t *testing.T) {
	c := Production
	const bytes = 4096
	cases := []struct {
		name    string
		unit    Unit
		maxHops int // -1 means an error is expected
	}{
		{"empty", Unit{Hosts: []int{0}}, -1},
		{"home-only", c.PerHost().Units[0], 1},
		{"cross-link", c.WholeCluster().Units[0], 2},
	}
	for _, tc := range cases {
		bt, err := c.BroadcastTime(0, tc.unit, bytes)
		rt, rerr := c.ReduceTime(0, tc.unit, bytes)
		if tc.maxHops < 0 {
			if err == nil {
				t.Errorf("%s: broadcast accepted empty unit (got %v)", tc.name, bt)
			}
			if rerr == nil {
				t.Errorf("%s: reduce accepted empty unit (got %v)", tc.name, rt)
			}
			continue
		}
		if err != nil || rerr != nil {
			t.Errorf("%s: errors %v / %v", tc.name, err, rerr)
			continue
		}
		want := bytes/c.Link.Bandwidth + float64(tc.maxHops)*c.Link.HopDelay
		if math.Abs(bt-want) > 1e-15 {
			t.Errorf("%s: broadcast = %v, want %v", tc.name, bt, want)
		}
		if rt != bt {
			t.Errorf("%s: reduce %v != broadcast %v", tc.name, rt, bt)
		}
	}
}

func TestDescribe(t *testing.T) {
	c := Production
	out := c.Describe(c.PerHost())
	for _, want := range []string{"4 hosts", "16 processor boards", "unit 0", "25% of peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}
