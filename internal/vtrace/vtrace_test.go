package vtrace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRecorderTiling(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Grape, 0, 1)
	r.Add(CommSend, 1, 1.5)
	r.Add(HostWork, 2, 3) // gap [1.5,2] becomes idle
	r.Close(4)            // trailing gap [3,4] becomes idle
	if err := r.Check(4); err != nil {
		t.Fatal(err)
	}
	if got := r.Total(Idle); got != 1.5 {
		t.Errorf("idle = %v, want 1.5", got)
	}
	if got := r.Totals().Sum(); got != 4 {
		t.Errorf("sum = %v, want exactly 4", got)
	}
	// The span chain must tile [0,4]: grape, comm-send, idle, host, idle.
	wantPhases := []Phase{Grape, CommSend, Idle, HostWork, Idle}
	spans := r.Spans()
	if len(spans) != len(wantPhases) {
		t.Fatalf("got %d spans, want %d", len(spans), len(wantPhases))
	}
	for i, sp := range spans {
		if sp.Phase != wantPhases[i] {
			t.Errorf("span %d = %v, want %v", i, sp.Phase, wantPhases[i])
		}
	}
}

// The breakdown contract is EXACT equality of the phase sum and the end
// time, even when the span endpoints are awkward floats whose differences
// accumulate rounding error.
func TestRecorderExactSumWithFloatNoise(t *testing.T) {
	r := NewRecorder(3)
	cur := 0.0
	for i := 0; i < 10000; i++ {
		next := cur + 1e-7*(1+math.Mod(float64(i)*0.618, 1))
		r.Add(Phase(i%3), cur, next) // Predict, Grape, HostWork
		cur = next
	}
	r.Close(cur)
	if err := r.Check(cur); err != nil {
		t.Fatal(err)
	}
	if got := r.Totals().Sum(); got != cur {
		t.Errorf("sum %v != end %v (diff %g)", got, cur, got-cur)
	}
}

func TestRecorderRejectsBadSpans(t *testing.T) {
	cases := []struct {
		name string
		feed func(r *Recorder)
	}{
		{"backwards", func(r *Recorder) { r.Add(Grape, 2, 1) }},
		{"overlap", func(r *Recorder) { r.Add(Grape, 0, 2); r.Add(HostWork, 1, 3) }},
		{"idle-phase", func(r *Recorder) { r.Add(Idle, 0, 1) }},
		{"bad-tag", func(r *Recorder) { r.Span(int(Idle), 0, 1) }},
		{"negative-tag", func(r *Recorder) { r.Span(-1, 0, 1) }},
		{"after-close", func(r *Recorder) { r.Close(1); r.Add(Grape, 1, 2) }},
	}
	for _, tc := range cases {
		r := NewRecorder(0)
		tc.feed(r)
		r.Close(5)
		if err := r.Check(5); err == nil {
			t.Errorf("%s: Check passed, want error", tc.name)
		}
	}
}

func TestRecorderCheckCatchesWrongEnd(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Grape, 0, 1)
	r.Close(2)
	if err := r.Check(3); err == nil {
		t.Error("Check accepted mismatched end time")
	}
	if err := NewRecorder(0).Check(1); err == nil {
		t.Error("Check accepted unclosed recorder")
	}
}

func TestNilRecorderAndSetAreNoOps(t *testing.T) {
	var r *Recorder
	r.Add(Grape, 0, 1)
	r.Span(0, 0, 1)
	r.Close(1)
	if err := r.Check(1); err != nil {
		t.Errorf("nil recorder Check: %v", err)
	}
	if r.SetWait(Sync) != CommWait {
		t.Error("nil SetWait should report CommWait")
	}
	if r.Rank() != -1 || r.Total(Grape) != 0 || r.Spans() != nil || r.End() != 0 {
		t.Error("nil recorder accessors not zero")
	}

	var s *Set
	s.MessageSent(0, 1, 0, 10, 0)
	s.RecvBlocked(0, 0, 0, 1)
	s.Close(1)
	if err := s.Check(1); err != nil {
		t.Errorf("nil set Check: %v", err)
	}
	if s.Ranks() != 0 || s.Recorder(0) != nil || s.Breakdown() != nil {
		t.Error("nil set accessors not zero")
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatalf("nil set WriteTrace: %v", err)
	}
	var f map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil set trace not JSON: %v", err)
	}
}

func TestSetWaitAttribution(t *testing.T) {
	s := NewSet(2)
	r := s.Recorder(1)
	s.RecvBlocked(1, 0, 0, 1) // default wait: CommWait
	old := r.SetWait(Sync)
	if old != CommWait {
		t.Errorf("previous wait = %v", old)
	}
	s.RecvBlocked(1, 0, 1, 2) // now Sync
	r.SetWait(old)
	s.RecvBlocked(1, 0, 2, 3) // back to CommWait
	s.Close(3)
	if err := s.Check(3); err != nil {
		t.Fatal(err)
	}
	if r.Total(CommWait) != 2 || r.Total(Sync) != 1 {
		t.Errorf("comm-wait=%v sync=%v, want 2/1", r.Total(CommWait), r.Total(Sync))
	}
}

func TestSetTrafficMatrices(t *testing.T) {
	s := NewSet(3)
	s.MessageSent(0, 1, 7, 100, 0)
	s.MessageSent(0, 1, 7, 50, 2e-6)
	s.MessageSent(2, 0, 9, 30, 1e-6)
	if s.Messages(0, 1) != 2 || s.Bytes(0, 1) != 150 {
		t.Errorf("0->1 = %d msgs %d bytes", s.Messages(0, 1), s.Bytes(0, 1))
	}
	if s.Messages(2, 0) != 1 || s.Bytes(2, 0) != 30 {
		t.Errorf("2->0 = %d msgs %d bytes", s.Messages(2, 0), s.Bytes(2, 0))
	}
	if s.Messages(1, 0) != 0 {
		t.Error("unused pair nonzero")
	}
	if got := s.QueueDelay(0); got != 2e-6 {
		t.Errorf("queue delay = %v", got)
	}
}

func TestBreakdownMeanAndTable(t *testing.T) {
	s := NewSet(2)
	s.Recorder(0).Add(Grape, 0, 1)
	s.Recorder(1).Add(HostWork, 0, 3)
	s.Close(4)
	if err := s.Check(4); err != nil {
		t.Fatal(err)
	}
	b := s.Breakdown()
	if b.End != 4 {
		t.Errorf("end = %v", b.End)
	}
	m := b.Mean()
	if m[Grape] != 0.5 || m[HostWork] != 1.5 || m.Sum() != 4 {
		t.Errorf("mean = %+v", m)
	}
	// Model-component mapping.
	if m.Host() != m[HostWork] || m.Grape() != m[Grape] ||
		m.Comm() != m[CommSend] || m.Sync() != m[Sync]+m[CommWait] {
		t.Error("model accessors disagree with phase mapping")
	}
	tab := b.Table()
	for _, want := range []string{"rank", "grape", "comm-wait", "mean", "total"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	if lines := strings.Count(tab, "\n"); lines != 4 { // header + 2 ranks + mean
		t.Errorf("table has %d lines, want 4:\n%s", lines, tab)
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	s := NewSet(2)
	s.Recorder(0).Add(Grape, 0, 0.5)
	s.Recorder(0).Add(CommSend, 0.75, 1) // idle gap at [0.5,0.75]
	s.Recorder(1).Add(Sync, 0, 1)
	s.Close(1)
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	var meta, spans int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Name == "idle" {
				t.Error("idle span exported; idle should be a gap")
			}
			if ev.Name == "grape" && (ev.Ts != 0 || ev.Dur != 0.5e6) {
				t.Errorf("grape span ts=%v dur=%v, want virtual µs", ev.Ts, ev.Dur)
			}
		default:
			t.Errorf("unexpected event type %q", ev.Ph)
		}
	}
	if meta != 2 {
		t.Errorf("%d process metadata events, want 2", meta)
	}
	if spans != 3 { // grape, comm-send, sync — idle omitted
		t.Errorf("%d span events, want 3", spans)
	}
}
