package vtrace

import (
	"encoding/json"
	"io"
	"strconv"
)

// Chrome trace-event JSON export (the "Trace Event Format" consumed by
// chrome://tracing and Perfetto): one process (pid) per rank, one
// complete-duration ("X") event per non-idle span, timestamps in VIRTUAL
// microseconds. Idle fill spans are omitted — a gap in the track reads
// as idle in the viewer, and leaving them out keeps large traces light.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object container form of the format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace writes the set's spans as Chrome trace-event JSON.
func (s *Set) WriteTrace(w io.Writer) error {
	const usec = 1e6 // virtual seconds → trace microseconds
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	if s != nil {
		for rank, r := range s.recs {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", Pid: rank,
				Args: map[string]any{"name": rankName(rank)},
			})
			for _, sp := range r.Spans() {
				if sp.Phase == Idle {
					continue
				}
				f.TraceEvents = append(f.TraceEvents, traceEvent{
					Name: sp.Phase.String(),
					Cat:  "vtrace",
					Ph:   "X",
					Ts:   sp.Start * usec,
					Dur:  (sp.End - sp.Start) * usec,
					Pid:  rank,
					Tid:  0,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func rankName(rank int) string {
	return "rank " + strconv.Itoa(rank)
}
