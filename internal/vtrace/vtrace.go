// Package vtrace is the virtual-time accounting layer of the multi-node
// co-simulation: per-rank phase spans and network counters recorded while
// the parallel drivers (internal/parallel) run on the DES kernel
// (internal/des) over the simulated network (internal/simnet).
//
// The paper's tuning methodology (Section 4.4, Figures 15-19) is exactly
// this decomposition — time per block step split into host, GRAPE,
// communication and synchronization components, re-measured after every
// NIC change. A Recorder reproduces it at the event level: each simulated
// rank's virtual timeline is tiled by attributed spans (Predict, Grape,
// HostWork, CommSend, CommWait, Sync) with the gaps accounted as Idle, so
// that for every rank
//
//	sum over phases of span time + idle == engine end time, exactly.
//
// Check enforces that invariant; Breakdown aggregates the totals for
// comparison against the analytic model (internal/timing); WriteTrace
// exports the spans as Chrome trace-event JSON (one pid per rank, virtual
// microseconds) loadable in chrome://tracing or Perfetto.
//
// The package has no dependencies. It plugs into des and simnet through
// structural interfaces: Recorder implements des.SpanObserver and Set
// implements simnet.Observer without importing either. All record methods
// are nil-receiver safe, so an unattached (nil) recorder costs one branch
// per event — the zero-overhead fast path of the production drivers.
package vtrace

import (
	"fmt"
	"math"
)

// Phase labels one attributed slice of a rank's virtual timeline.
type Phase uint8

// The phase set mirrors the paper's block-step decomposition, refined for
// the event level: CommSend is time the host spends feeding its GRAPE
// link (the paper's "communication" component), CommWait is time blocked
// on the host network waiting for data, Sync is time blocked in the
// block-time agreement barrier, Idle is unattributed virtual time.
const (
	Predict  Phase = iota // predictor pipeline work
	Grape                 // force pipelines busy
	HostWork              // frontend integration (corrector, bookkeeping)
	CommSend              // host<->GRAPE DMA and transfer
	CommWait              // blocked receiving host-network data
	Sync                  // blocked in the block-time barrier
	Idle                  // unattributed gaps
	NumPhases
)

var phaseNames = [NumPhases]string{
	"predict", "grape", "host", "comm-send", "comm-wait", "sync", "idle",
}

// String returns the phase's short name.
func (ph Phase) String() string {
	if ph >= NumPhases {
		return fmt.Sprintf("phase(%d)", uint8(ph))
	}
	return phaseNames[ph]
}

// Span is one attributed interval of virtual time.
type Span struct {
	Phase      Phase
	Start, End float64
}

// spanChunk is one fixed-size block of a recorder's span chain. Spans are
// appended into chunks instead of a growing slice so that recording never
// copies earlier spans and a full-machine run (hundreds of ranks, millions
// of spans) costs one arena allocation per ~128 spans instead of repeated
// slice doublings.
const spanChunkLen = 128

type spanChunk struct {
	next *spanChunk
	n    int
	sp   [spanChunkLen]Span
}

// spanArena hands out chunks carved from slab allocations of 32 chunks,
// so chunk allocation itself amortizes to 1/32 of an allocation. A Set
// shares one arena across all of its rank recorders.
type spanArena struct {
	slab []spanChunk
}

func (a *spanArena) alloc() *spanChunk {
	if len(a.slab) == 0 {
		//grapelint:ignore noallocdeep amortized arena slab: one allocation per 32 chunks, 1/32 of an alloc per chunk handed out
		a.slab = make([]spanChunk, 32)
	}
	c := &a.slab[0]
	a.slab = a.slab[1:]
	return c
}

// Recorder accumulates one rank's phase spans. The zero value is not
// ready for use; call NewRecorder. A nil *Recorder is a valid no-op
// target for every method — the fast path when tracing is off.
type Recorder struct {
	rank   int
	cursor float64 // virtual time up to which the timeline is tiled
	wait   Phase   // attribution for blocked-receive time
	totals [NumPhases]float64

	// Span storage: an arena-backed chunk chain (see spanChunk).
	arena      *spanArena
	head, tail *spanChunk
	nspans     int

	closed bool
	end    float64
	slack  float64 // idle adjustment applied by Close (FP reconciliation)

	// First recorded violation (overlapping or backwards span); kept as
	// plain fields so recording stays allocation-free.
	bad       bool
	badPhase  Phase
	badFrom   float64
	badTo     float64
	badCursor float64
}

// NewRecorder returns an empty recorder for the given rank. Blocked
// receives are attributed to CommWait until SetWait changes the phase.
func NewRecorder(rank int) *Recorder {
	return &Recorder{rank: rank, wait: CommWait, arena: &spanArena{}}
}

// appendSpan appends to the chunk chain, taking a fresh arena chunk when
// the tail fills.
//
//grape:noalloc
func (r *Recorder) appendSpan(s Span) {
	t := r.tail
	if t == nil || t.n == spanChunkLen {
		c := r.arena.alloc()
		if t == nil {
			r.head = c
		} else {
			t.next = c
		}
		r.tail = c
		t = c
	}
	t.sp[t.n] = s
	t.n++
	r.nspans++
}

// Rank returns the rank this recorder accounts for.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Add records one attributed span [from, to]. Spans must be appended in
// non-decreasing time order (the DES discipline guarantees this for a
// single simulated process); the gap since the previous span is
// accounted as Idle. Zero-length spans are dropped. Out-of-order or
// backwards spans are not recorded — they flag the recorder so Check
// fails with the offending span.
//
//grape:noalloc
func (r *Recorder) Add(ph Phase, from, to float64) {
	if r == nil || from == to {
		return
	}
	if ph >= Idle || to < from || from < r.cursor || r.closed {
		if !r.bad {
			r.bad = true
			r.badPhase, r.badFrom, r.badTo, r.badCursor = ph, from, to, r.cursor
		}
		return
	}
	if from > r.cursor {
		r.totals[Idle] += from - r.cursor
		r.appendSpan(Span{Phase: Idle, Start: r.cursor, End: from})
	}
	r.totals[ph] += to - from
	r.appendSpan(Span{Phase: ph, Start: from, End: to})
	r.cursor = to
}

// Span implements des.SpanObserver: SleepAs tags map one-to-one onto
// Phase values.
//
//grape:noalloc
func (r *Recorder) Span(tag int, from, to float64) {
	if r == nil {
		return
	}
	if tag < 0 || tag >= int(Idle) {
		if !r.bad {
			r.bad = true
			r.badPhase, r.badFrom, r.badTo, r.badCursor = NumPhases, from, to, r.cursor
		}
		return
	}
	r.Add(Phase(tag), from, to)
}

// SetWait sets the phase that blocked-receive time is attributed to and
// returns the previous one — drivers bracket barrier sections with
// SetWait(Sync)/restore so the same simnet hook feeds both Sync and
// CommWait. On a nil recorder it returns CommWait.
func (r *Recorder) SetWait(ph Phase) Phase {
	if r == nil {
		return CommWait
	}
	old := r.wait
	r.wait = ph
	return old
}

// Close tiles the trailing gap as Idle up to the engine end time and
// reconciles the per-phase totals so their fixed-order sum equals end
// EXACTLY — accumulating many span differences drifts by ulps, and the
// breakdown's contract is that the per-rank sum is the virtual end time,
// not almost. The adjustment is folded into Idle and exposed to Check,
// which bounds it at ~1e-9 relative.
func (r *Recorder) Close(end float64) {
	if r == nil || r.closed {
		return
	}
	if end < r.cursor {
		if !r.bad {
			r.bad = true
			r.badPhase, r.badFrom, r.badTo, r.badCursor = Idle, end, end, r.cursor
		}
		end = r.cursor
	}
	if end > r.cursor {
		r.totals[Idle] += end - r.cursor
		r.appendSpan(Span{Phase: Idle, Start: r.cursor, End: end})
		r.cursor = end
	}
	gap := r.totals[Idle]
	for i := 0; i < 4; i++ {
		s := r.sum()
		if s == end {
			break
		}
		r.totals[Idle] += end - s
	}
	r.slack = r.totals[Idle] - gap
	r.end = end
	r.closed = true
}

// sum is the fixed-order phase total — the same order every consumer of
// Totals uses, so "sum equals end" is a meaningful exact comparison.
func (r *Recorder) sum() float64 {
	var s float64
	for _, v := range r.totals {
		s += v
	}
	return s
}

// Total returns the accumulated time of one phase.
func (r *Recorder) Total(ph Phase) float64 {
	if r == nil || ph >= NumPhases {
		return 0
	}
	return r.totals[ph]
}

// Totals returns the per-phase totals.
func (r *Recorder) Totals() PhaseTotals {
	if r == nil {
		return PhaseTotals{}
	}
	return r.totals
}

// Spans materializes the recorded spans (including Idle fill) into a
// fresh slice owned by the caller. Recording keeps spans in chunked arena
// storage; this is the cold-path flat view for export and tests. A
// recorder with no spans returns nil.
func (r *Recorder) Spans() []Span {
	if r == nil || r.nspans == 0 {
		return nil
	}
	out := make([]Span, 0, r.nspans)
	for c := r.head; c != nil; c = c.next {
		out = append(out, c.sp[:c.n]...)
	}
	return out
}

// End returns the engine end time passed to Close.
func (r *Recorder) End() float64 {
	if r == nil {
		return 0
	}
	return r.end
}

// Check verifies the tiling invariant after Close: the span chain covers
// [0, end] contiguously with exact boundary equality, the fixed-order
// phase sum equals end exactly, no out-of-order span was ever recorded,
// and the floating-point reconciliation Close applied is negligible. A
// nil recorder trivially passes.
func (r *Recorder) Check(end float64) error {
	if r == nil {
		return nil
	}
	if r.bad {
		if r.badPhase == NumPhases {
			return fmt.Errorf("vtrace: rank %d recorded span with invalid tag at [%g,%g]", r.rank, r.badFrom, r.badTo)
		}
		return fmt.Errorf("vtrace: rank %d span %v [%g,%g] violates ordering (cursor %g)",
			r.rank, r.badPhase, r.badFrom, r.badTo, r.badCursor)
	}
	if !r.closed {
		return fmt.Errorf("vtrace: rank %d not closed", r.rank)
	}
	if r.end != end {
		return fmt.Errorf("vtrace: rank %d closed at %g, engine ended at %g", r.rank, r.end, end)
	}
	prev := 0.0
	i := 0
	for c := r.head; c != nil; c = c.next {
		for _, sp := range c.sp[:c.n] {
			if sp.Start != prev || sp.End < sp.Start {
				return fmt.Errorf("vtrace: rank %d span %d (%v [%g,%g]) does not tile (expected start %g)",
					r.rank, i, sp.Phase, sp.Start, sp.End, prev)
			}
			prev = sp.End
			i++
		}
	}
	if prev != end {
		return fmt.Errorf("vtrace: rank %d spans end at %g, engine at %g", r.rank, prev, end)
	}
	if s := r.sum(); s != end {
		return fmt.Errorf("vtrace: rank %d phase sum %g != end %g", r.rank, s, end)
	}
	if tol := 1e-9 * (1 + math.Abs(end)); math.Abs(r.slack) > tol {
		return fmt.Errorf("vtrace: rank %d idle reconciliation %g exceeds tolerance %g", r.rank, r.slack, tol)
	}
	return nil
}

// PhaseTotals is a per-phase time vector.
type PhaseTotals [NumPhases]float64

// Sum returns the fixed-order total — equal to the engine end time for a
// closed, checked recorder.
func (t PhaseTotals) Sum() float64 {
	var s float64
	for _, v := range t {
		s += v
	}
	return s
}

// The four model-component accessors map the event-level phases onto the
// analytic decomposition (timing.Report / perfmodel.BlockCost): Host is
// frontend work, Grape the force pipelines, Comm the host↔GRAPE link, and
// Sync everything spent blocked on the host network — the barrier proper
// plus data-exchange waits, which the analytic model folds into its
// network terms.
func (t PhaseTotals) Host() float64  { return t[HostWork] }
func (t PhaseTotals) Grape() float64 { return t[Grape] }
func (t PhaseTotals) Comm() float64  { return t[CommSend] }
func (t PhaseTotals) Sync() float64  { return t[Sync] + t[CommWait] }

// Set is one co-simulation's complete accounting: a recorder per rank
// plus the network traffic matrices. A nil *Set is a valid no-op target
// for every method.
type Set struct {
	recs  []*Recorder
	msgs  []int64   // n×n message counts, from*n+to
	bytes []int64   // n×n byte counts, from*n+to
	queue []float64 // per-sender NIC serialization queueing delay
	end   float64
}

// NewSet builds recorders and matrices for n ranks.
func NewSet(n int) *Set {
	if n <= 0 {
		panic(fmt.Sprintf("vtrace: non-positive rank count %d", n))
	}
	s := &Set{
		recs:  make([]*Recorder, n),
		msgs:  make([]int64, n*n),
		bytes: make([]int64, n*n),
		queue: make([]float64, n),
	}
	// One shared arena: rank recorders fill at similar rates, so shared
	// slabs cut the allocation count another 32× across the set.
	ar := &spanArena{}
	for i := range s.recs {
		s.recs[i] = &Recorder{rank: i, wait: CommWait, arena: ar}
	}
	return s
}

// Ranks returns the rank count (0 for a nil set).
func (s *Set) Ranks() int {
	if s == nil {
		return 0
	}
	return len(s.recs)
}

// Recorder returns rank's recorder, or nil on a nil set — callers can
// thread the result straight into the nil-tolerant record calls.
func (s *Set) Recorder(rank int) *Recorder {
	if s == nil {
		return nil
	}
	return s.recs[rank]
}

// MessageSent implements simnet.Observer: it accumulates the
// per-(from,to) traffic matrices and the sender's NIC queueing delay
// (time the transfer waited behind earlier serializations).
//
//grape:noalloc
func (s *Set) MessageSent(from, to, tag, bytes int, queued float64) {
	if s == nil {
		return
	}
	n := len(s.recs)
	s.msgs[from*n+to]++
	s.bytes[from*n+to] += int64(bytes)
	s.queue[from] += queued
}

// RecvBlocked implements simnet.Observer: blocked-receive time lands on
// the receiving rank's recorder under its current wait phase.
//
//grape:noalloc
func (s *Set) RecvBlocked(to, tag int, from, until float64) {
	if s == nil {
		return
	}
	r := s.recs[to]
	r.Add(r.wait, from, until)
}

// Messages returns the message count from → to.
func (s *Set) Messages(from, to int) int64 {
	if s == nil {
		return 0
	}
	return s.msgs[from*len(s.recs)+to]
}

// Bytes returns the byte count from → to.
func (s *Set) Bytes(from, to int) int64 {
	if s == nil {
		return 0
	}
	return s.bytes[from*len(s.recs)+to]
}

// QueueDelay returns the total NIC serialization queueing delay of
// rank's outgoing transfers.
func (s *Set) QueueDelay(rank int) float64 {
	if s == nil {
		return 0
	}
	return s.queue[rank]
}

// Close closes every recorder at the engine end time.
func (s *Set) Close(end float64) {
	if s == nil {
		return
	}
	s.end = end
	for _, r := range s.recs {
		r.Close(end)
	}
}

// Check verifies the tiling invariant on every rank.
func (s *Set) Check(end float64) error {
	if s == nil {
		return nil
	}
	for _, r := range s.recs {
		if err := r.Check(end); err != nil {
			return err
		}
	}
	return nil
}

// Breakdown snapshots the per-rank phase totals after Close.
func (s *Set) Breakdown() *Breakdown {
	if s == nil {
		return nil
	}
	b := &Breakdown{End: s.end, Ranks: make([]PhaseTotals, len(s.recs))}
	for i, r := range s.recs {
		b.Ranks[i] = r.Totals()
	}
	return b
}

// Breakdown is the per-rank and aggregated phase accounting of one run.
type Breakdown struct {
	End   float64 // engine end time == Result.VirtualTime
	Ranks []PhaseTotals
}

// Mean returns the per-rank mean of each phase — the machine-level view
// comparable with the analytic timing.Report components (which model the
// per-host critical path, not the rank sum).
func (b *Breakdown) Mean() PhaseTotals {
	var m PhaseTotals
	if b == nil || len(b.Ranks) == 0 {
		return m
	}
	for _, r := range b.Ranks {
		for ph, v := range r {
			m[ph] += v
		}
	}
	inv := 1 / float64(len(b.Ranks))
	for ph := range m {
		m[ph] *= inv
	}
	return m
}

// Table renders the per-rank breakdown plus the per-rank mean, one row
// per rank with the exact per-rank total in the last column.
func (b *Breakdown) Table() string {
	if b == nil {
		return ""
	}
	out := fmt.Sprintf("%-6s %12s %12s %12s %12s %12s %12s %12s %14s\n",
		"rank", "predict", "grape", "host", "comm-send", "comm-wait", "sync", "idle", "total")
	row := func(label string, t PhaseTotals) string {
		return fmt.Sprintf("%-6s %12.5g %12.5g %12.5g %12.5g %12.5g %12.5g %12.5g %14.8g\n",
			label, t[Predict], t[Grape], t[HostWork], t[CommSend], t[CommWait], t[Sync], t[Idle], t.Sum())
	}
	for i, t := range b.Ranks {
		out += row(fmt.Sprintf("%d", i), t)
	}
	out += row("mean", b.Mean())
	return out
}
