// Package grape6 is a software reproduction of the system described in
// "Performance evaluation and tuning of GRAPE-6 — towards 40 'real'
// Tflops" (Makino, Kokubo, Fukushige & Daisaka, SC 2003): the
// sixth-generation special-purpose computer for gravitational many-body
// problems, its Hermite individual-block-timestep integration stack, its
// parallel algorithms, and the performance models behind the paper's
// evaluation.
//
// The hardware itself obviously cannot be reproduced in Go; what this
// module provides instead is (a) a functional emulator of the GRAPE-6
// pipeline chip and packaging hierarchy that preserves the machine's
// arithmetic behaviour — fixed-point positions, short-mantissa pipelines,
// and the block-floating-point summation whose partition invariance the
// paper highlights — and (b) a calibrated performance model plus
// discrete-event network simulation that regenerate every figure and
// table of the paper's evaluation section. See DESIGN.md for the full
// system inventory and EXPERIMENTS.md for paper-vs-reproduced results.
//
// Entry points:
//
//   - internal/core: the Simulator facade used by the examples;
//   - cmd/grape6sim: run an N-body integration on the emulated stack;
//   - cmd/grape6bench: regenerate any table or figure;
//   - cmd/grape6calib: inspect workload fits and model breakdowns;
//   - bench_test.go: the same experiments as Go benchmarks.
package grape6
