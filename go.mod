module grape6

go 1.22
